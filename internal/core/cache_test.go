package core

import (
	"testing"

	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

func TestCacheHitReusesDeclaration(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := NewCache(h.eng, m, h.core, 0, true)
	addr := h.buf(t, 1<<20)
	segs := []Segment{{addr, 1 << 20}}
	var r1, r2 *Region
	h.eng.Go("app", func(p *sim.Proc) {
		var err error
		r1, err = c.Get(p, segs)
		if err != nil {
			t.Errorf("get1: %v", err)
		}
		c.Put(r1)
		r2, err = c.Get(p, segs)
		if err != nil {
			t.Errorf("get2: %v", err)
		}
		c.Put(r2)
	})
	h.eng.Run()
	if r1 != r2 {
		t.Fatal("cache did not reuse the declaration")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", st)
	}
	if m.Stats().Declares != 1 {
		t.Fatalf("driver saw %d declares, want 1", m.Stats().Declares)
	}
}

func TestCacheDisabledDeclaresEachTime(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: PinEachComm})
	c := NewCache(h.eng, m, h.core, 0, false)
	addr := h.buf(t, 256*1024)
	segs := []Segment{{addr, 256 * 1024}}
	h.eng.Go("app", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			r, err := c.Get(p, segs)
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			done := m.Acquire(r)
			done.Wait(p)
			m.Release(r)
			c.Put(r)
		}
	})
	h.eng.Run()
	if m.Stats().Declares != 3 || m.Stats().Undeclares != 3 {
		t.Fatalf("declares/undeclares = %d/%d, want 3/3",
			m.Stats().Declares, m.Stats().Undeclares)
	}
	if m.NumRegions() != 0 {
		t.Fatal("regions leaked in no-cache mode")
	}
}

func TestCacheDifferentSegmentsMiss(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := NewCache(h.eng, m, h.core, 0, true)
	a1 := h.buf(t, 256*1024)
	a2 := h.buf(t, 256*1024)
	h.eng.Go("app", func(p *sim.Proc) {
		r1, _ := c.Get(p, []Segment{{a1, 256 * 1024}})
		r2, _ := c.Get(p, []Segment{{a2, 256 * 1024}})
		r3, _ := c.Get(p, []Segment{{a1, 128 * 1024}}) // same addr, different len
		if r1 == r2 || r1 == r3 {
			t.Error("distinct segment lists shared a region")
		}
		c.Put(r1)
		c.Put(r2)
		c.Put(r3)
	})
	h.eng.Run()
	if st := c.Stats(); st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := NewCache(h.eng, m, h.core, 2, true)
	bufs := []vm.Addr{h.buf(t, 256*1024), h.buf(t, 256*1024), h.buf(t, 256*1024)}
	h.eng.Go("app", func(p *sim.Proc) {
		for _, a := range bufs {
			r, err := c.Get(p, []Segment{{a, 256 * 1024}})
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			c.Put(r)
		}
		// First buffer was evicted; getting it again is a miss.
		r, _ := c.Get(p, []Segment{{bufs[0], 256 * 1024}})
		c.Put(r)
	})
	h.eng.Run()
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite capacity 2 and 3 buffers")
	}
	if st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 4 misses (re-get after eviction misses)", st)
	}
	if c.Len() > 2 {
		t.Fatalf("cache len %d exceeds capacity", c.Len())
	}
}

func TestCacheReferencedEntriesNotEvicted(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := NewCache(h.eng, m, h.core, 1, true)
	a1 := h.buf(t, 256*1024)
	a2 := h.buf(t, 256*1024)
	h.eng.Go("app", func(p *sim.Proc) {
		r1, _ := c.Get(p, []Segment{{a1, 256 * 1024}})
		// r1 still referenced: inserting r2 must not undeclare r1.
		r2, _ := c.Get(p, []Segment{{a2, 256 * 1024}})
		if _, ok := m.Region(r1.ID()); !ok {
			t.Error("referenced region was undeclared")
		}
		c.Put(r1)
		c.Put(r2)
	})
	h.eng.Run()
}

func TestCacheHitAfterDriverUnpin(t *testing.T) {
	// The decoupling in action: the driver unpinned (notifier) but the
	// cache still hits; the acquire repins transparently.
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := NewCache(h.eng, m, h.core, 0, true)
	addr := h.buf(t, 1<<20)
	segs := []Segment{{addr, 1 << 20}}
	h.eng.Go("app", func(p *sim.Proc) {
		r, _ := c.Get(p, segs)
		m.Acquire(r).Wait(p)
		m.Release(r)
		c.Put(r)
		// Free + realloc (same address).
		if err := h.al.Free(addr); err != nil {
			t.Error(err)
		}
		p.Yield()
		addr2, _ := h.al.Malloc(1 << 20)
		if addr2 != addr {
			t.Error("address not reused")
		}
		r2, _ := c.Get(p, segs)
		if r2 != r {
			t.Error("cache missed after free/realloc of the same buffer")
		}
		if err := m.Acquire(r2).Wait(p); err != nil {
			t.Errorf("repin failed: %v", err)
		}
		if !r2.Pinned() {
			t.Error("not repinned")
		}
		m.Release(r2)
		c.Put(r2)
	})
	h.eng.Run()
	if m.Stats().Repins != 1 {
		t.Fatalf("Repins = %d, want 1", m.Stats().Repins)
	}
}

func TestCacheCostsCharged(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := NewCache(h.eng, m, h.core, 0, true)
	addr := h.buf(t, 256*1024)
	segs := []Segment{{addr, 256 * 1024}}
	h.eng.Go("app", func(p *sim.Proc) {
		r, _ := c.Get(p, segs)
		c.Put(r)
	})
	h.eng.Run()
	if h.core.BusyTime(0)+h.core.BusyTime(1)+h.core.BusyTime(2) == 0 {
		t.Fatal("cache charged no CPU time")
	}
}

func TestKeyDeterminism(t *testing.T) {
	segs := []Segment{{0x1000, 50}, {0x2000, 60}}
	if key(segs) != key([]Segment{{0x1000, 50}, {0x2000, 60}}) {
		t.Fatal("identical segment lists produced different keys")
	}
	if key(segs) == key([]Segment{{0x2000, 60}, {0x1000, 50}}) {
		t.Fatal("order-swapped segments collided")
	}
	if key(segs) == key(segs[:1]) {
		t.Fatal("prefix collided")
	}
}
