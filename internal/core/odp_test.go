package core

import (
	"testing"

	"omxsim/internal/cpu"
)

// TestODPFaultsOnColdPages: a never-touched buffer is non-resident, so
// the first Ready check fails and raises a page request; after the host
// services it, the same range is Ready — without pinning anything.
func TestODPFaultsOnColdPages(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: NoPinODP})
	addr := h.buf(t, 256*1024)
	r, err := m.Declare([]Segment{{addr, 256 * 1024}})
	if err != nil {
		t.Fatal(err)
	}
	m.Acquire(r)
	h.eng.Run()

	if r.Ready(0, 64*1024) {
		t.Fatal("cold pages reported resident")
	}
	h.eng.Run() // service the page request
	if !r.Ready(0, 64*1024) {
		t.Fatal("pages still missing after fault service")
	}
	st := m.Stats()
	if st.ODPFaults == 0 || st.ODPFaultPages != 16 {
		t.Fatalf("odp faults=%d pages=%d, want 16 pages over >=1 round",
			st.ODPFaults, st.ODPFaultPages)
	}
	if st.PagesPinned != 0 || m.PinnedPages() != 0 {
		t.Fatal("ODP pinned pages")
	}
	if h.core.BusyTime(cpu.Kernel) == 0 {
		t.Fatal("fault service charged no kernel time")
	}
}

// TestODPFaultDedup: repeated Ready checks while a page request is in
// flight do not issue duplicate requests for the same pages.
func TestODPFaultDedup(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: NoPinODP})
	addr := h.buf(t, 128*1024)
	r, _ := m.Declare([]Segment{{addr, 128 * 1024}})
	m.Acquire(r)
	h.eng.Run()

	for i := 0; i < 5; i++ {
		if r.Ready(0, 128*1024) {
			t.Fatal("cold pages reported resident")
		}
	}
	h.eng.Run()
	st := m.Stats()
	if st.ODPFaults != 1 {
		t.Fatalf("odp fault rounds = %d, want 1 (dedup)", st.ODPFaults)
	}
	if st.ODPFaultPages != 32 {
		t.Fatalf("odp fault pages = %d, want 32", st.ODPFaultPages)
	}
}

// TestODPSwapOutRefaults: swap pressure evicts the (unpinned) pages; the
// next device access faults them back in, which is exactly the cost ODP
// trades for never pinning.
func TestODPSwapOutRefaults(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: NoPinODP})
	addr := h.buf(t, 64*1024)
	want := []byte("survives swap")
	if err := h.as.Write(addr, want); err != nil {
		t.Fatal(err)
	}
	r, _ := m.Declare([]Segment{{addr, 64 * 1024}})
	m.Acquire(r)
	h.eng.Run()
	if !r.Ready(0, 64*1024) {
		h.eng.Run()
	}
	if !r.Ready(0, 64*1024) {
		t.Fatal("warm pages not ready")
	}

	if n, err := h.as.SwapOut(addr, 64*1024); err != nil || n != 16 {
		t.Fatalf("swapout = %d, %v; ODP pages must be evictable", n, err)
	}
	if r.Ready(0, 64*1024) {
		t.Fatal("swapped pages reported resident")
	}
	h.eng.Run()
	if !r.Ready(0, 64*1024) {
		t.Fatal("pages not faulted back after swap")
	}
	got := make([]byte, len(want))
	if err := r.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("data lost across swap: %q", got)
	}
}

// TestPinAheadSpeculation: under pin-ahead, declaring a region (the path
// an Advise hint takes) starts the pin with nobody waiting, so the later
// acquire finds it already pinned.
func TestPinAheadSpeculation(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: PinAhead})
	addr := h.buf(t, 512*1024)
	r, err := m.Declare([]Segment{{addr, 512 * 1024}})
	if err != nil {
		t.Fatal(err)
	}
	h.eng.Run()
	if !r.Pinned() {
		t.Fatal("declaration did not pin ahead")
	}
	st := m.Stats()
	if st.SpeculativePins != 1 {
		t.Fatalf("speculative pins = %d, want 1", st.SpeculativePins)
	}
	done := m.Acquire(r)
	h.eng.Run()
	if done.Err() != nil {
		t.Fatal(done.Err())
	}
	if m.Stats().AcquiresPinned != 1 {
		t.Fatal("acquire did not find the region pre-pinned")
	}
	m.Release(r)
	if !r.Pinned() {
		t.Fatal("pin-ahead must keep the region pinned across releases")
	}
}
