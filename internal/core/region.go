// Package core implements the paper's contribution: memory pinning
// decoupled from the application.
//
// A user region (paper §2.2) is a possibly-vectorial set of user-space
// segments declared once to the driver and referenced afterwards by a small
// integer descriptor. Declaring a region does NOT pin it: the driver pins
// on demand when a communication request needs the pages, may unpin at any
// time (MMU-notifier invalidation, pinned-page pressure), and repins later
// — all without telling user space (paper §3.1). Pinning can also be
// overlapped with communication: the pin runs as deferred kernel work in
// page chunks behind a progress cursor while the transfer is already on the
// wire (paper §3.3).
//
// The package has two halves mirroring Figure 4 of the paper:
//
//   - RegionManager — the kernel/driver side: declared regions, the pin
//     engine, MMU-notifier hookup, pinned-page accounting with LRU release.
//   - Cache — the user-space side: an LRU of declared regions keyed by
//     segment list, so repeated use of the same buffer reuses the same
//     descriptor without a new declaration (the "pin-down cache" lineage,
//     Tezuka et al. 1998, made reliable by keeping invalidation in the
//     kernel).
package core

import (
	"errors"
	"fmt"

	"omxsim/internal/policy"
	"omxsim/internal/vm"
)

// Segment is one contiguous piece of a user region.
type Segment struct {
	Addr vm.Addr
	Len  int
}

// RegionID is the integer descriptor user space uses to name a declared
// region in communication requests (paper §3.2: requests carry only this).
type RegionID uint32

// PinPolicy names a built-in pinning strategy. It is a compact selector
// kept for configuration convenience: every value resolves, by name,
// to a policy.Policy backend from the internal/policy registry, and the
// Manager consults only that interface. New strategies do not extend
// this enum — they register a backend and are selected via
// omx.Config.Backend or the CLI's -policy flag.
type PinPolicy int

const (
	// PinEachComm pins synchronously when a communication acquires the
	// region and unpins when it releases it: the classical model, Figure 6's
	// "Pin once per Communication".
	PinEachComm PinPolicy = iota
	// Permanent pins at declaration and unpins only at undeclaration:
	// Figure 6's upper bound. Unsafe in general (ignores invalidations) but
	// the paper uses it as the best-case reference.
	Permanent
	// OnDemand pins synchronously at first use and leaves the region
	// pinned; MMU notifiers unpin on invalidation and the next use repins.
	// Combined with the user-space Cache this is Figure 7's "Pinning Cache".
	OnDemand
	// Overlapped is OnDemand but the pin executes as deferred chunked
	// kernel work while the transfer proceeds; accessors check the progress
	// cursor (Figure 7's "Overlapped Pinning").
	Overlapped
	// NoPinning is the idealized QsNet-style model the paper's conclusion
	// points at ("the idea of removing the need to pin entirely, as
	// implemented on QSNET"): the NIC has a full MMU synchronized with the
	// host page table, so nothing is ever pinned and accesses translate
	// through the live page table at zero modeled cost. It is an upper
	// bound, not something commodity Ethernet hardware can do.
	NoPinning
	// NoPinODP is the NP-RDMA-style on-demand-paging model: nothing is
	// pinned and the NIC translates through the live page table, but an
	// access to a non-resident page fails like an IOMMU page fault — the
	// packet is dropped, the host services the page request
	// asynchronously, and the NIC path retries with backoff.
	NoPinODP
	// PinAhead is the eBPF-mm-style user-guided model: declarations and
	// application hints (omx.Endpoint.Advise) start pinning
	// speculatively, ahead of any communication, so acquires usually
	// find the region already pinned.
	PinAhead
)

// String names the policy as in the paper's figures.
func (p PinPolicy) String() string {
	switch p {
	case PinEachComm:
		return "pin-each-comm"
	case Permanent:
		return "permanent"
	case OnDemand:
		return "on-demand"
	case Overlapped:
		return "overlapped"
	case NoPinning:
		return "no-pinning"
	case NoPinODP:
		return "odp"
	case PinAhead:
		return "pin-ahead"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Backend resolves the enum value to its registered policy backend. An
// unregistered name is a programming error.
func (p PinPolicy) Backend() policy.Policy {
	b, ok := policy.ByName(p.String())
	if !ok {
		panic(fmt.Sprintf("core: pin policy %q has no registered backend", p.String()))
	}
	return b
}

// Errors returned by region operations.
var (
	ErrUnknownRegion = errors.New("core: unknown region id")
	ErrRegionBusy    = errors.New("core: region has active users")
	ErrPinFailed     = errors.New("core: pinning failed (invalid segment?)")
	ErrTooManySegs   = errors.New("core: too many segments")
)

// MaxSegments bounds a vectorial region's segment count (mirrors the
// driver's fixed-size declaration buffer).
const MaxSegments = 256

// pinState tracks a region's pages.
type pinState int

const (
	stateUnpinned pinState = iota
	statePinning           // overlapped pin in progress
	statePinned
)

// segPin holds the pin handles and flattened frames of one segment.
type segPin struct {
	pages   int // total pages covering the segment
	handles []*vm.Pinned
	frames  []*vm.Frame // flattened, one per pinned page so far
}

// Region is a declared user region (driver side).
type Region struct {
	id     RegionID
	segs   []Segment
	segPin []segPin
	bytes  int
	pages  int
	// noPin marks a page-table-translated region (no-pinning and ODP
	// backends): accesses go through the live page table instead of
	// pinned frames.
	noPin bool
	// odp additionally gates accesses on page residency: a non-resident
	// page makes Ready false and raises an ODP fault to the manager.
	odp bool
	as  *vm.AddressSpace
	mgr *Manager

	// odpPending tracks region page indexes with an in-flight ODP fault
	// request, so each page is requested from the host once per miss.
	odpPending map[int]struct{}

	// parent, when non-nil, marks this region as a subrange *view* of a
	// larger cached declaration: the cache hands these out for requests
	// fully covered by an existing entry. A view holds no driver state of
	// its own — pinning, use counts, and accesses all delegate to the
	// parent at parentOff/parentPageOff. Views never appear in
	// Manager.regions and share the parent's descriptor.
	parent        *Region
	parentOff     int // byte offset of the view within the parent
	parentPageOff int // page offset of the view within the parent

	state       pinState
	pinnedPages int // progress cursor, in region page order across segments
	epoch       uint64
	useCount    int
	lastUse     int64 // LRU tick from the manager

	// waiters are completions waiting for the whole region to be pinned
	// (synchronous policies) keyed off the current epoch.
	waiters []pinWaiter
	// prefixWaiters wait for a pin-progress threshold (overlapped prefix).
	prefixWaiters []prefixWaiter

	invalidated bool // saw a notifier hit while declared (stats/debug)
}

type pinWaiter struct {
	epoch uint64
	done  func(err error)
}

type prefixWaiter struct {
	epoch uint64
	pages int
	done  func(err error)
}

// newSubRegion builds a view of seg within parent (a single-segment
// declaration whose byte span covers seg).
func newSubRegion(parent *Region, seg Segment) *Region {
	if len(parent.segs) != 1 {
		panic("core: subrange view of a vectorial region")
	}
	pages := vm.PageCount(seg.Addr, seg.Len)
	return &Region{
		id:     parent.id,
		segs:   []Segment{seg},
		segPin: []segPin{{pages: pages}},
		bytes:  seg.Len,
		pages:  pages,
		noPin:  parent.noPin,
		odp:    parent.odp,
		as:     parent.as,
		mgr:    parent.mgr,

		parent:    parent,
		parentOff: int(seg.Addr - parent.segs[0].Addr),
		parentPageOff: int((vm.PageAlignDown(seg.Addr) -
			vm.PageAlignDown(parent.segs[0].Addr)) >> vm.PageShift),
	}
}

// Base returns the underlying declared region: the parent for subrange
// views, the region itself otherwise. Driver-side identity (Manager
// bookkeeping, abort matching, cache reference counting) always works on
// the base.
func (r *Region) Base() *Region {
	if r.parent != nil {
		return r.parent
	}
	return r
}

// IsView reports whether the region is a subrange view of a larger
// declaration.
func (r *Region) IsView() bool { return r.parent != nil }

// ID returns the region's descriptor.
func (r *Region) ID() RegionID { return r.id }

// Bytes returns the total byte length across segments.
func (r *Region) Bytes() int { return r.bytes }

// Pages returns the total page count across segments.
func (r *Region) Pages() int { return r.pages }

// PinnedPages returns the pin progress cursor. For a view it is the
// parent's cursor projected onto the view's page range.
func (r *Region) PinnedPages() int {
	if r.parent != nil {
		n := r.parent.pinnedPages - r.parentPageOff
		if n < 0 {
			n = 0
		}
		if n > r.pages {
			n = r.pages
		}
		return n
	}
	return r.pinnedPages
}

// Pinned reports whether every page is pinned (for a view: every page of
// the view's range within the parent).
func (r *Region) Pinned() bool {
	if r.parent != nil {
		return r.parent.state != stateUnpinned && r.PinnedPages() == r.pages
	}
	return r.state == statePinned
}

// InUse reports whether any communication currently references the region.
func (r *Region) InUse() bool { return r.Base().useCount > 0 }

// Segments returns a copy of the region's segment list.
func (r *Region) Segments() []Segment {
	out := make([]Segment, len(r.segs))
	copy(out, r.segs)
	return out
}

// pageSpan computes, for a byte range [off, off+length) within the region's
// logical byte order, the inclusive range of region page indices it touches.
// Region pages are numbered across segments in declaration order.
func (r *Region) pageSpan(off, length int) (firstPage, lastPage int, err error) {
	if off < 0 || length <= 0 || off+length > r.bytes {
		return 0, 0, fmt.Errorf("core: byte range [%d,%d) outside region of %d bytes",
			off, off+length, r.bytes)
	}
	pageBase := 0
	remainingOff := off
	remaining := length
	first, last := -1, -1
	for si, seg := range r.segs {
		if remainingOff >= seg.Len {
			remainingOff -= seg.Len
			pageBase += r.segPin[si].pages
			continue
		}
		// Range starts (or continues) in this segment.
		segStart := remainingOff
		n := seg.Len - segStart
		if n > remaining {
			n = remaining
		}
		firstByte := seg.Addr + vm.Addr(segStart)
		lastByte := seg.Addr + vm.Addr(segStart+n-1)
		fp := pageBase + int((vm.PageAlignDown(firstByte)-vm.PageAlignDown(seg.Addr))>>vm.PageShift)
		lp := pageBase + int((vm.PageAlignDown(lastByte)-vm.PageAlignDown(seg.Addr))>>vm.PageShift)
		if first == -1 {
			first = fp
		}
		last = lp
		remaining -= n
		remainingOff = 0
		pageBase += r.segPin[si].pages
		if remaining == 0 {
			break
		}
	}
	if remaining != 0 || first == -1 {
		return 0, 0, fmt.Errorf("core: internal: range [%d,%d) not covered by segments", off, off+length)
	}
	return first, last, nil
}

// Ready reports whether the byte range [off, off+length) lies entirely
// within the pinned prefix — the accessor test the paper adds for
// overlapped pinning ("some additional tests on the region descriptor when
// an incoming packet is processed", §4.2). Page-table-translated regions
// are always ready except under ODP, where a non-resident page makes the
// range not ready and — modeling the NIC raising a PCIe page request —
// asks the manager to fault the missing pages in; the caller drops the
// packet and the protocol's retry machinery provides the backoff.
func (r *Region) Ready(off, length int) bool {
	if r.parent != nil {
		if off < 0 || length < 0 || off+length > r.bytes {
			return false
		}
		return r.parent.Ready(r.parentOff+off, length)
	}
	if r.noPin {
		if off < 0 || length < 0 || off+length > r.bytes {
			return false
		}
		if !r.odp || length == 0 {
			return true
		}
		return r.odpReady(off, length)
	}
	if r.state == statePinned {
		return true
	}
	if length <= 0 {
		return off >= 0 && off <= r.bytes
	}
	_, last, err := r.pageSpan(off, length)
	if err != nil {
		return false
	}
	return last < r.pinnedPages
}

// odpReady checks residency of every page under [off, off+length) with
// one bulk walk per segment (this runs on the packet hot path) and
// collects the misses into one fault request to the manager.
func (r *Region) odpReady(off, length int) bool {
	first, last, err := r.pageSpan(off, length)
	if err != nil {
		return false
	}
	var missing []int
	base := 0
	for si, seg := range r.segs {
		segPages := r.segPin[si].pages
		lo, hi := first-base, last-base
		if lo < 0 {
			lo = 0
		}
		if hi > segPages-1 {
			hi = segPages - 1
		}
		if lo <= hi {
			start := vm.PageAlignDown(seg.Addr) + vm.Addr(lo)<<vm.PageShift
			for _, m := range r.as.MissingPages(start, hi-lo+1) {
				missing = append(missing, base+lo+m)
			}
		}
		base += segPages
		if base > last {
			break
		}
	}
	if len(missing) == 0 {
		return true
	}
	r.mgr.odpFault(r, missing)
	return false
}

// access iterates the pinned frames covering [off, off+length). NoPinning
// regions delegate to the virtual accessors instead.
func (r *Region) access(off, length int, fn func(f *vm.Frame, frameOff, n, done int)) error {
	if !r.Ready(off, length) {
		return fmt.Errorf("core: access [%d,%d) beyond pinned prefix (%d/%d pages): %w",
			off, off+length, r.pinnedPages, r.pages, ErrPinFailed)
	}
	done := 0
	segOff := off
	for si, seg := range r.segs {
		if segOff >= seg.Len {
			segOff -= seg.Len
			continue
		}
		sp := &r.segPin[si]
		for done < length && segOff < seg.Len {
			a := seg.Addr + vm.Addr(segOff)
			pageIdx := int((vm.PageAlignDown(a) - vm.PageAlignDown(seg.Addr)) >> vm.PageShift)
			frameOff := int(a - vm.PageAlignDown(a))
			n := vm.PageSize - frameOff
			if n > length-done {
				n = length - done
			}
			if n > seg.Len-segOff {
				n = seg.Len - segOff
			}
			f := sp.frames[pageIdx]
			fn(f, frameOff, n, done)
			done += n
			segOff += n
		}
		segOff = 0
		if done >= length {
			return nil
		}
	}
	if done != length {
		return fmt.Errorf("core: internal: accessed %d of %d bytes", done, length)
	}
	return nil
}

// ReadBufAt returns a zero-copy (copy-on-reference) view of length bytes at
// region byte offset off, through the pinned frames. This is the device-side
// read the sender's pull path uses: O(pages) references instead of O(bytes)
// copies; see vm.Buf for the snapshot semantics. The range must be Ready.
func (r *Region) ReadBufAt(off, length int) (vm.Buf, error) {
	if r.parent != nil {
		if off < 0 || off+length > r.bytes {
			return vm.Buf{}, fmt.Errorf("core: access [%d,%d) outside view of %d bytes",
				off, off+length, r.bytes)
		}
		return r.parent.ReadBufAt(r.parentOff+off, length)
	}
	var b vm.Buf
	if r.noPin {
		// NIC-MMU model: translate through the live page table; the copy is
		// part of the model, so materialize.
		dst := make([]byte, length)
		if err := r.virtAccess(off, length, func(a vm.Addr, bb []byte) error {
			return r.as.Read(a, bb)
		}, dst); err != nil {
			return b, err
		}
		return vm.BufOf(dst), nil
	}
	err := r.access(off, length, func(f *vm.Frame, fo, n, done int) {
		b.AppendFrame(f, fo, n)
	})
	return b, err
}

// WriteBufAt writes a zero-copy view into the region at byte offset off,
// adopting whole-page chunks by reference (the receive-side analogue of
// ReadBufAt). The range must be Ready.
func (r *Region) WriteBufAt(off int, b *vm.Buf) error {
	if r.parent != nil {
		if off < 0 || off+b.Len() > r.bytes {
			return fmt.Errorf("core: access [%d,%d) outside view of %d bytes",
				off, off+b.Len(), r.bytes)
		}
		return r.parent.WriteBufAt(r.parentOff+off, b)
	}
	if r.noPin {
		return r.WriteAt(off, b.Bytes())
	}
	w := vm.NewBufWriter(b)
	return r.access(off, b.Len(), func(f *vm.Frame, fo, n, done int) {
		w.WriteTo(f, fo, n)
	})
}

// ReadAt copies length bytes at region byte offset off into dst, through
// the pinned frames (device-side access: no page-table walk). The range
// must be Ready. NoPinning regions translate through the live page table
// (the NIC-MMU model).
func (r *Region) ReadAt(off int, dst []byte) error {
	if r.parent != nil {
		if off < 0 || off+len(dst) > r.bytes {
			return fmt.Errorf("core: access [%d,%d) outside view of %d bytes",
				off, off+len(dst), r.bytes)
		}
		return r.parent.ReadAt(r.parentOff+off, dst)
	}
	if r.noPin {
		return r.virtAccess(off, len(dst), func(a vm.Addr, b []byte) error {
			return r.as.Read(a, b)
		}, dst)
	}
	return r.access(off, len(dst), func(f *vm.Frame, fo, n, done int) {
		f.Read(fo, dst[done:done+n])
	})
}

// WriteAt copies src into the region at byte offset off. The range must be
// Ready.
func (r *Region) WriteAt(off int, src []byte) error {
	if r.parent != nil {
		if off < 0 || off+len(src) > r.bytes {
			return fmt.Errorf("core: access [%d,%d) outside view of %d bytes",
				off, off+len(src), r.bytes)
		}
		return r.parent.WriteAt(r.parentOff+off, src)
	}
	if r.noPin {
		return r.virtAccess(off, len(src), func(a vm.Addr, b []byte) error {
			return r.as.Write(a, b)
		}, src)
	}
	return r.access(off, len(src), func(f *vm.Frame, fo, n, done int) {
		f.Write(fo, src[done:done+n])
	})
}

// virtAccess walks the segment list and performs op on each virtual piece
// of [off, off+length).
func (r *Region) virtAccess(off, length int, op func(vm.Addr, []byte) error, buf []byte) error {
	if off < 0 || off+length > r.bytes {
		return fmt.Errorf("core: access [%d,%d) outside region of %d bytes", off, off+length, r.bytes)
	}
	done := 0
	segOff := off
	for _, seg := range r.segs {
		if segOff >= seg.Len {
			segOff -= seg.Len
			continue
		}
		n := seg.Len - segOff
		if n > length-done {
			n = length - done
		}
		if err := op(seg.Addr+vm.Addr(segOff), buf[done:done+n]); err != nil {
			return err
		}
		done += n
		segOff = 0
		if done >= length {
			return nil
		}
	}
	return nil
}

// pinnedOverlaps reports whether [start,end) intersects the region's
// pinned prefix — the pages whose frames the driver actually holds.
func (r *Region) pinnedOverlaps(start, end vm.Addr) bool {
	base := 0
	for si, seg := range r.segs {
		pinnedInSeg := r.pinnedPages - base
		if pinnedInSeg <= 0 {
			return false
		}
		if pinnedInSeg > r.segPin[si].pages {
			pinnedInSeg = r.segPin[si].pages
		}
		sStart := vm.PageAlignDown(seg.Addr)
		sEnd := sStart + vm.Addr(pinnedInSeg)<<vm.PageShift
		if start < sEnd && sStart < end {
			return true
		}
		base += r.segPin[si].pages
	}
	return false
}

// overlaps reports whether the virtual range [start,end) intersects any
// segment of the region.
func (r *Region) overlaps(start, end vm.Addr) bool {
	for _, seg := range r.segs {
		sStart := vm.PageAlignDown(seg.Addr)
		sEnd := vm.PageAlignUp(seg.Addr + vm.Addr(seg.Len))
		if start < sEnd && sStart < end {
			return true
		}
	}
	return false
}
