// Package cluster assembles complete simulated clusters: hosts (cores,
// memory, NIC, I/OAT), an Ethernet fabric, Open-MX endpoints, and an MPI
// world — one call sets up everything an experiment needs.
package cluster

import (
	"fmt"

	"omxsim/internal/cpu"
	"omxsim/internal/ethernet"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
)

// NodeGroup is one homogeneous slice of a heterogeneous cluster: Nodes
// hosts sharing a rank count and memory budget. Groups lay out in
// declaration order, so node indices (and with them block rank
// distribution and shard assignment) are deterministic.
type NodeGroup struct {
	// Name labels the group in specs and diagnostics.
	Name string
	// Nodes is the group's host count.
	Nodes int
	// RanksPerNode overrides Config.RanksPerNode for this group
	// (0 = inherit).
	RanksPerNode int
	// EndpointsPerNode overrides Config.EndpointsPerNode for this group
	// (0 = inherit): how many OMX endpoints each rank-role serves through.
	EndpointsPerNode int
	// NICQueues overrides Config.NICQueues for this group (0 = inherit).
	NICQueues int
	// Mem overrides Config.Mem for this group's hosts. The zero value
	// (Frames 0) means unbounded memory, not "inherit" — a fleet's
	// compute tier is typically unbounded while its storage tier has a
	// frame budget.
	Mem omx.MemConfig
}

// Config describes a cluster.
type Config struct {
	// Nodes is the host count (default 2, the paper's testbed). Ignored
	// when Groups is set: the group sizes then determine it.
	Nodes int
	// RanksPerNode is how many MPI ranks (endpoints) each host runs
	// (default 1). Ranks are block-distributed: ranks 0..k-1 on node 0.
	RanksPerNode int
	// EndpointsPerNode opens that many OMX endpoints per rank-role
	// (default 1): the primary carries the rank's MPI traffic, the rest
	// attach as aux serving lanes (Endpoint.Aux) sharing the rank's
	// process — multi-endpoint servers for fleet-scale kv serving.
	EndpointsPerNode int
	// NICQueues is the per-node NIC tx/rx queue count (default 1). Flows
	// steer across queues via the fabric's seeded RSS function; each rx
	// queue's bottom halves land on their own core.
	NICQueues int
	// RanksPerProc groups a node's consecutive ranks into shared
	// processes (default 1: one process per rank). Ranks in one process
	// share an address space, allocator, driver region manager, and —
	// importantly — the user-space region cache, so a buffer declared by
	// one rank is a cache hit for its process peers. The process adopts
	// the configuration of its first rank; EndpointConfig is consulted
	// once per process.
	RanksPerProc int
	// Spec selects the host CPU (default cpu.XeonE5460, the paper's main
	// machine).
	Spec cpu.Spec
	// OMX is the per-endpoint Open-MX configuration (pinning policy, cache,
	// I/OAT, ...).
	OMX omx.Config
	// Groups, when non-empty, makes the cluster heterogeneous: nodes lay
	// out group by group, each group with its own ranks-per-node and
	// memory budget. Nodes is derived (the sum of group sizes) and the
	// group's Mem replaces Config.Mem wholesale for its hosts.
	Groups []NodeGroup
	// Mem is the per-node physical-memory pressure model: a frame budget
	// with kswapd watermarks. With Mem.Frames > 0 every node runs a
	// kswapd and allocations past capacity stall in direct reclaim, so
	// swap pressure emerges from the allocator (the pressure-* scenario
	// family) instead of the fault injector.
	Mem omx.MemConfig
	// Shards splits the cluster across that many parallel engine shards
	// (clamped to Nodes), with nodes block-distributed and the fabric's
	// one-way link latency (PropDelay) as the conservative lookahead
	// window. 0 (the default) keeps the legacy single-engine path with
	// its exact historical event order; 1 runs the windowed coordinator
	// on one shard — the serial reference the determinism tests compare
	// higher shard counts against. Requires a positive PropDelay.
	Shards int
	// RxCoreIdx is the core servicing NIC interrupts on every node
	// (default 0).
	RxCoreIdx int
	// AppCoreBase is the first core used for application ranks; rank i on a
	// node runs on core AppCoreBase+i (default 1, keeping apps off the
	// interrupt core).
	AppCoreBase int
	// AppsOnRxCore forces every rank onto the interrupt core, reproducing
	// the paper's §4.3 overload scenario (application pinning work starved
	// by bottom halves).
	AppsOnRxCore bool
	// Link overrides the fabric parameters (default: 10G, 500ns).
	Link *ethernet.LinkConfig
	// Seed makes the run deterministic (default 1).
	Seed int64
	// LoopbackBytesPerSec bounds intra-node messaging (default 4 GB/s).
	LoopbackBytesPerSec float64
	// EndpointConfig, when non-nil, customises the OMX configuration per
	// endpoint: it receives the node index, the global rank, and the base
	// config (Config.OMX) and returns the config to open that endpoint
	// with. Scenarios use it for heterogeneous pin-policy matrices (e.g.
	// one rank overlapped, the peer pin-each-comm).
	EndpointConfig func(node, rank int, base omx.Config) omx.Config
	// OnBuild hooks run after the cluster is fully wired but before any
	// workload starts. Scenario construction uses them to attach tracing
	// or schedule fault-injection events against the finished topology.
	OnBuild []func(*Cluster)
}

// Cluster is a fully wired simulation instance.
type Cluster struct {
	// Eng is the engine of shard 0 — the only engine in a legacy or
	// single-shard build. Sharded code paths must address engines per
	// node (Nodes[i].Eng); Eng remains for the single-engine experiments
	// and as the coordinator-side default.
	Eng       *sim.Engine
	Fabric    *ethernet.Fabric
	Nodes     []*omx.Node
	Endpoints []*omx.Endpoint // indexed by rank, block-distributed
	World     *mpi.World
	// Set coordinates the engine shards (nil on the legacy path).
	Set *sim.ShardSet

	// bounded records that the last drive was budget-limited, so Now()
	// reports the deadline the clocks were advanced to rather than the
	// last foreground event.
	bounded bool
}

// New builds a cluster.
func New(cfg Config) (*Cluster, error) {
	// Group sizes determine the node count before anything (the shard
	// clamp included) reads it.
	if len(cfg.Groups) > 0 {
		cfg.Nodes = 0
		for _, g := range cfg.Groups {
			if g.Nodes <= 0 {
				return nil, fmt.Errorf("cluster: group %q has %d nodes", g.Name, g.Nodes)
			}
			cfg.Nodes += g.Nodes
		}
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	if cfg.RanksPerNode == 0 {
		cfg.RanksPerNode = 1
	}
	if cfg.RanksPerProc == 0 {
		cfg.RanksPerProc = 1
	}
	if cfg.Spec.Cores == 0 {
		cfg.Spec = cpu.XeonE5460
	}
	if cfg.AppCoreBase == 0 {
		cfg.AppCoreBase = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.LoopbackBytesPerSec == 0 {
		cfg.LoopbackBytesPerSec = 4e9
	}
	link := ethernet.DefaultLinkConfig()
	if cfg.Link != nil {
		link = *cfg.Link
	}
	shards := cfg.Shards
	if shards > cfg.Nodes {
		shards = cfg.Nodes
	}
	if shards > 0 && link.PropDelay <= 0 {
		return nil, fmt.Errorf("cluster: sharded mode needs a positive link PropDelay as lookahead (got %v)", link.PropDelay)
	}
	// One engine per shard; the legacy path (shards == 0) is a single
	// engine with no coordinator. Nodes are block-distributed so ranks
	// that talk to node-local peers stay on one shard.
	engines := []*sim.Engine{sim.NewEngine(cfg.Seed)}
	for i := 1; i < shards; i++ {
		engines = append(engines, sim.NewEngine(cfg.Seed))
	}
	engineOf := func(node int) *sim.Engine {
		if shards == 0 {
			return engines[0]
		}
		return engines[node*shards/cfg.Nodes]
	}
	fabric := ethernet.NewFabric(engines[0], link)
	fabric.Seed = cfg.Seed
	fabric.LoopbackBytesPerSec = cfg.LoopbackBytesPerSec

	cl := &Cluster{Eng: engines[0], Fabric: fabric}
	if shards > 0 {
		cl.Set = sim.NewShardSet(link.PropDelay, engines)
		shardOf := func(node int) int { return node * shards / cfg.Nodes }
		fabric.SetRouter(func(dst *ethernet.NIC, fr *ethernet.Frame, when, sendTime sim.Time, srcSeq uint64) {
			cl.Set.Post(sim.CrossEvent{
				When:     when,
				SendTime: sendTime,
				SrcShard: shardOf(fr.Src),
				DstShard: shardOf(fr.Dst),
				SrcNode:  fr.Src,
				DstNode:  fr.Dst,
				SrcSeq:   srcSeq,
				Fn:       func() { dst.Deliver(fr) },
			})
		})
	}
	// Per-node rank count, endpoint fan-out, queue count, and memory
	// budget: uniform from Config unless Groups carves the cluster into
	// heterogeneous slices.
	if cfg.EndpointsPerNode == 0 {
		cfg.EndpointsPerNode = 1
	}
	if cfg.NICQueues == 0 {
		cfg.NICQueues = 1
	}
	rpnOf := make([]int, cfg.Nodes)
	epnOf := make([]int, cfg.Nodes)
	nqOf := make([]int, cfg.Nodes)
	memOf := make([]omx.MemConfig, cfg.Nodes)
	for i := range rpnOf {
		rpnOf[i] = cfg.RanksPerNode
		epnOf[i] = cfg.EndpointsPerNode
		nqOf[i] = cfg.NICQueues
		memOf[i] = cfg.Mem
	}
	if len(cfg.Groups) > 0 {
		i := 0
		for _, g := range cfg.Groups {
			rpn := g.RanksPerNode
			if rpn == 0 {
				rpn = cfg.RanksPerNode
			}
			epn := g.EndpointsPerNode
			if epn == 0 {
				epn = cfg.EndpointsPerNode
			}
			nq := g.NICQueues
			if nq == 0 {
				nq = cfg.NICQueues
			}
			for k := 0; k < g.Nodes; k++ {
				rpnOf[i] = rpn
				epnOf[i] = epn
				nqOf[i] = nq
				memOf[i] = g.Mem
				i++
			}
		}
	}
	rank := 0
	for n := 0; n < cfg.Nodes; n++ {
		node := omx.NewNode(engineOf(n), fabric, cfg.Spec, n, cfg.RxCoreIdx)
		if nqOf[n] > 1 {
			node.ConfigureQueues(nqOf[n])
		}
		node.ConfigureMemory(memOf[n])
		cl.Nodes = append(cl.Nodes, node)
		var proc *omx.Process
		for r := 0; r < rpnOf[n]; r++ {
			coreIdx := (cfg.AppCoreBase + r) % cfg.Spec.Cores
			if cfg.AppsOnRxCore {
				coreIdx = cfg.RxCoreIdx
			}
			if r%cfg.RanksPerProc == 0 {
				omxCfg := cfg.OMX
				if cfg.EndpointConfig != nil {
					omxCfg = cfg.EndpointConfig(n, rank, omxCfg)
				}
				var err error
				proc, err = node.NewProcess(r, coreIdx, omxCfg)
				if err != nil {
					return nil, fmt.Errorf("cluster: node %d rank %d: %w", n, r, err)
				}
			}
			ep, err := node.OpenEndpointIn(proc, r, coreIdx)
			if err != nil {
				return nil, fmt.Errorf("cluster: node %d rank %d: %w", n, r, err)
			}
			// Aux serving lanes: extra endpoints in the same process, with
			// ep ids past the node's rank range and cores fanned out past
			// the rank's own. EndpointConfig applies per process, so lanes
			// inherit the rank's configuration.
			for j := 1; j < epnOf[n]; j++ {
				auxID := rpnOf[n] + r*(epnOf[n]-1) + (j - 1)
				auxCore := coreIdx
				if !cfg.AppsOnRxCore {
					auxCore = (cfg.AppCoreBase + r + j) % cfg.Spec.Cores
				}
				aux, err := node.OpenEndpointIn(proc, auxID, auxCore)
				if err != nil {
					return nil, fmt.Errorf("cluster: node %d rank %d lane %d: %w", n, r, j, err)
				}
				ep.AttachAux(aux)
			}
			cl.Endpoints = append(cl.Endpoints, ep)
			rank++
		}
	}
	cl.World = mpi.NewWorld(engines[0], cl.Endpoints)
	if cl.Set != nil {
		// Rank-completion flags are written by rank bodies on their own
		// shards; AllDone readers inside the simulation get the
		// barrier-published snapshot.
		cl.Set.AddBarrierHook(cl.World.PublishDone)
	}
	for _, hook := range cfg.OnBuild {
		hook(cl)
	}
	return cl, nil
}

// Processes returns the distinct processes backing the cluster's
// endpoints, in endpoint order — the unit to iterate for per-manager or
// per-cache accounting (endpoints sharing a process share both).
func (cl *Cluster) Processes() []*omx.Process {
	seen := make(map[*omx.Process]bool, len(cl.Endpoints))
	var out []*omx.Process
	for _, ep := range cl.Endpoints {
		if p := ep.Process(); !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Close shuts every endpoint down (cancelling in-flight protocol timers,
// detaching MMU notifiers, dropping all pins) and returns the pages the
// drivers still report pinned afterwards plus any pin/unpin ledger
// imbalance. Today's teardown path unpins unconditionally, so a non-zero
// return means a regression — Manager.Close skipping a region, or the
// page accounting drifting from the pins actually held — which the
// scenario runner surfaces as a case note on every cell.
func (cl *Cluster) Close() int {
	for _, ep := range cl.Endpoints {
		for _, aux := range ep.Aux() {
			aux.Close()
		}
		ep.Close()
	}
	leaked := 0
	for _, p := range cl.Processes() {
		residual := p.Manager().PinnedPages()
		st := p.Manager().Stats()
		// A still-pinned region shows up in both the residual count and
		// the ledger delta; count it once, and count any remaining
		// divergence (either sign) as accounting drift.
		drift := int(st.PagesPinned) - int(st.PagesUnpinned) - residual
		if drift < 0 {
			drift = -drift
		}
		leaked += residual + drift
	}
	return leaked
}

// Run executes body on every rank and drives the engine (or the shard
// set) until all ranks finish; it panics if the simulation deadlocks
// (event queues drained with ranks still running).
func (cl *Cluster) Run(body func(c *mpi.Comm)) {
	cl.World.Run(body)
	if cl.Set != nil {
		cl.Set.Run()
	} else {
		cl.Eng.Run()
	}
	if !cl.World.AllDone() {
		panic("cluster: simulation deadlocked: event queue empty with ranks still blocked")
	}
}

// RunFor executes body on every rank but stops the simulation after budget
// of simulated time even if ranks are still blocked (useful for saturation
// experiments that never terminate, like the §4.3 overload). It reports
// whether all ranks finished. Blocked rank goroutines are abandoned; only
// use this from short-lived processes or tests.
func (cl *Cluster) RunFor(budget sim.Duration, body func(c *mpi.Comm)) bool {
	cl.World.Run(body)
	cl.bounded = true
	if cl.Set != nil {
		cl.Set.RunUntil(cl.Eng.Now() + budget)
	} else {
		cl.Eng.RunUntil(cl.Eng.Now() + budget)
	}
	return cl.World.AllDone()
}

// Now reports the simulation end time the way a single engine would: the
// deadline for budget-bounded runs, otherwise the time of the last
// foreground event. In sharded runs the engine clocks sit at the final
// synchronization window's boundary, so the shard set's last-foreground
// time is the comparable quantity.
func (cl *Cluster) Now() sim.Time {
	if cl.Set == nil || cl.bounded {
		return cl.Eng.Now()
	}
	return cl.Set.LastForegroundTime()
}

// EventsFired sums dispatched events across all shards.
func (cl *Cluster) EventsFired() uint64 {
	if cl.Set != nil {
		return cl.Set.EventsFired()
	}
	return cl.Eng.EventsFired()
}

// ForegroundEventsFired sums dispatched non-daemon events across all
// shards. Daemon tick counts depend on where the final shard window lands,
// so reports that must be byte-identical across shard layouts use this.
func (cl *Cluster) ForegroundEventsFired() uint64 {
	if cl.Set != nil {
		return cl.Set.ForegroundEventsFired()
	}
	return cl.Eng.ForegroundEventsFired()
}

// Stats aggregates node driver stats across the cluster.
func (cl *Cluster) Stats() omx.NodeStats {
	var total omx.NodeStats
	for _, n := range cl.Nodes {
		s := n.Stats()
		total.FramesRx += s.FramesRx
		total.FramesTx += s.FramesTx
		total.EagerFragsRx += s.EagerFragsRx
		total.PullReqsRx += s.PullReqsRx
		total.PullRepliesRx += s.PullRepliesRx
		total.OverlapMissSender += s.OverlapMissSender
		total.OverlapMissReceiver += s.OverlapMissReceiver
		total.ReRequests += s.ReRequests
		total.OptimisticReReqs += s.OptimisticReReqs
		total.Retransmits += s.Retransmits
		total.DupFrags += s.DupFrags
		total.ReqAborts += s.ReqAborts
		total.Crashes += s.Crashes
		total.Restarts += s.Restarts
	}
	return total
}
