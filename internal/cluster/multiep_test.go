package cluster_test

import (
	"testing"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/omx"
)

func TestEndpointsPerNodeAttachesAuxLanes(t *testing.T) {
	cl, err := cluster.New(cluster.Config{
		Nodes:            2,
		EndpointsPerNode: 3,
		NICQueues:        2,
		OMX:              omx.DefaultConfig(core.OnDemand, true),
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ep := range cl.Endpoints {
		addrs := ep.AllAddrs()
		if len(addrs) != 3 {
			t.Fatalf("rank %d has %d lane addrs, want 3", r, len(addrs))
		}
		if addrs[0] != ep.Addr() {
			t.Fatalf("rank %d: primary address is not first", r)
		}
		seen := map[int]bool{}
		for _, a := range addrs {
			if a.Node != ep.Node().ID {
				t.Fatalf("rank %d: lane on node %d, want %d", r, a.Node, ep.Node().ID)
			}
			if seen[a.EP] {
				t.Fatalf("rank %d: duplicate endpoint id %d across lanes", r, a.EP)
			}
			seen[a.EP] = true
		}
		// Aux lanes share the rank's process, so per-process state
		// (pin manager, registration cache) is one unit per rank-role.
		for _, aux := range ep.Aux() {
			if aux.Process() != ep.Process() {
				t.Fatalf("rank %d: aux lane on a different process", r)
			}
		}
	}
	for _, n := range cl.Nodes {
		if n.RxQueues() != 2 || n.NIC.Queues() != 2 {
			t.Fatalf("node %d: rx queues = %d, NIC queues = %d, want 2/2", n.ID, n.RxQueues(), n.NIC.Queues())
		}
	}
	if leaked := cl.Close(); leaked != 0 {
		t.Fatalf("%d pages pinned after close", leaked)
	}
}

func TestGroupEndpointOverrides(t *testing.T) {
	cl, err := cluster.New(cluster.Config{
		Groups: []cluster.NodeGroup{
			{Name: "storage", Nodes: 2, EndpointsPerNode: 2, NICQueues: 4},
			{Name: "clients", Nodes: 2},
		},
		OMX: omx.DefaultConfig(core.OnDemand, true),
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ep := range cl.Endpoints {
		want := 2
		if r >= 2 { // clients inherit the base default of 1
			want = 1
		}
		if got := len(ep.AllAddrs()); got != want {
			t.Fatalf("rank %d has %d lanes, want %d", r, got, want)
		}
	}
	for i, n := range cl.Nodes {
		want := 4
		if i >= 2 {
			want = 1
		}
		if n.RxQueues() != want {
			t.Fatalf("node %d rx queues = %d, want %d", i, n.RxQueues(), want)
		}
	}
	if leaked := cl.Close(); leaked != 0 {
		t.Fatalf("%d pages pinned after close", leaked)
	}
}
