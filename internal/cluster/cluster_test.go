package cluster_test

import (
	"testing"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/cpu"
	"omxsim/internal/ethernet"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
)

func TestDefaults(t *testing.T) {
	cl, err := cluster.New(cluster.Config{OMX: omx.DefaultConfig(core.OnDemand, true)})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(cl.Nodes))
	}
	if len(cl.Endpoints) != 2 || cl.World.Size() != 2 {
		t.Fatalf("ranks = %d, want 2", len(cl.Endpoints))
	}
	// Apps default to core 1, interrupts to core 0.
	if cl.Endpoints[0].Core().ID() != 1 {
		t.Fatalf("app core = %d, want 1", cl.Endpoints[0].Core().ID())
	}
	if cl.Nodes[0].RxCore().ID() != 0 {
		t.Fatalf("rx core = %d, want 0", cl.Nodes[0].RxCore().ID())
	}
	if cl.Nodes[0].Machine.Spec.Name != cpu.XeonE5460.Name {
		t.Fatalf("default host = %s", cl.Nodes[0].Machine.Spec.Name)
	}
}

func TestBlockRankDistribution(t *testing.T) {
	cl, err := cluster.New(cluster.Config{
		Nodes: 3, RanksPerNode: 2,
		OMX: omx.DefaultConfig(core.OnDemand, true),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Endpoints) != 6 {
		t.Fatalf("ranks = %d", len(cl.Endpoints))
	}
	// Block distribution: ranks 0,1 on node 0; 2,3 on node 1; 4,5 on node 2.
	for r, ep := range cl.Endpoints {
		if ep.Node().ID != r/2 {
			t.Fatalf("rank %d on node %d, want %d", r, ep.Node().ID, r/2)
		}
	}
}

func TestAppsOnRxCore(t *testing.T) {
	cl, err := cluster.New(cluster.Config{
		AppsOnRxCore: true,
		OMX:          omx.DefaultConfig(core.Overlapped, false),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range cl.Endpoints {
		if ep.Core().ID() != ep.Node().RxCore().ID() {
			t.Fatal("app not on the RX core despite AppsOnRxCore")
		}
	}
}

func TestRunDeadlockPanics(t *testing.T) {
	cl, _ := cluster.New(cluster.Config{OMX: omx.DefaultConfig(core.OnDemand, true)})
	defer func() {
		if recover() == nil {
			t.Error("deadlocked Run did not panic")
		}
	}()
	cl.Run(func(c *mpi.Comm) {
		if c.Rank() == 0 {
			buf := c.Malloc(4096)
			c.Recv(buf, 4096, 1, 1) // nobody ever sends
		}
	})
}

func TestRunForStopsAtBudget(t *testing.T) {
	cl, _ := cluster.New(cluster.Config{OMX: omx.DefaultConfig(core.OnDemand, true)})
	done := cl.RunFor(sim.Millisecond, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			buf := c.Malloc(4096)
			c.Recv(buf, 4096, 1, 1) // never completes
		}
	})
	if done {
		t.Fatal("RunFor reported completion of a blocked rank")
	}
	if cl.Eng.Now() < sim.Millisecond {
		t.Fatalf("engine stopped at %v, before the budget", cl.Eng.Now())
	}
}

func TestStatsAggregation(t *testing.T) {
	cl, _ := cluster.New(cluster.Config{OMX: omx.DefaultConfig(core.OnDemand, true)})
	cl.Run(func(c *mpi.Comm) {
		buf := c.Malloc(1 << 20)
		if c.Rank() == 0 {
			c.Send(buf, 1<<20, 1, 1)
		} else {
			c.Recv(buf, 1<<20, 0, 1)
		}
	})
	st := cl.Stats()
	if st.FramesTx == 0 || st.FramesRx == 0 || st.PullRepliesRx == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() sim.Time {
		cl, _ := cluster.New(cluster.Config{
			Seed: 42,
			OMX:  omx.DefaultConfig(core.Overlapped, true),
		})
		cl.Run(func(c *mpi.Comm) {
			buf := c.Malloc(2 << 20)
			for i := 0; i < 3; i++ {
				if c.Rank() == 0 {
					c.Send(buf, 2<<20, 1, i)
				} else {
					c.Recv(buf, 2<<20, 0, i)
				}
			}
		})
		return cl.Eng.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical seeds produced different end times: %v vs %v", a, b)
	}
}

func TestCustomLinkConfig(t *testing.T) {
	link := cluster.Config{OMX: omx.DefaultConfig(core.OnDemand, true)}
	cfgLink := defaultLinkHalved()
	link.Link = &cfgLink
	cl, err := cluster.New(link)
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.Fabric.Config().BytesPerSec; got != cfgLink.BytesPerSec {
		t.Fatalf("link bandwidth = %v", got)
	}
}

func defaultLinkHalved() (cfg ethernetLinkConfig) {
	c := ethernet.DefaultLinkConfig()
	c.BytesPerSec /= 2
	return c
}

type ethernetLinkConfig = ethernet.LinkConfig
